package cache

import (
	"testing"

	"repro/internal/mem"
)

// The memory hierarchy is probed on every simulated load and store, so
// Access/AccessVersioned/Invalidate are hot paths of the whole evaluation
// (the engines call them orders of magnitude more often than they commit).
// Each benchmark pins a distinct regime: "hit" is the way-predicted L1
// probe that the fast path exists for, "miss" walks a working set larger
// than the L3 data region so every level scans and evicts. All of them
// must run allocation-free (TestHotPathsAllocFree asserts it; the CI
// bench smoke and sitm-bench -json report it).

// benchHierarchy builds one core of the Table 1 architecture.
func benchHierarchy() *Hierarchy {
	cfg := DefaultConfig()
	return NewHierarchy(cfg, NewShared(cfg))
}

// missLines is the miss-regime working set: 1 Mi distinct lines, strided
// so consecutive lines map to distinct translation-cache lines too. The
// reuse distance exceeds the 24 MiB L3 data region (384 Ki lines), so
// under LRU every access misses all three levels once warm.
const missLines = 1 << 20

func missLine(i int) mem.Line { return mem.Line(1 + (i&(missLines-1))*8) }

func BenchmarkAccess(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		h := benchHierarchy()
		h.Access(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(1)
		}
	})
	b.Run("miss", func(b *testing.B) {
		h := benchHierarchy()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(missLine(i))
		}
	})
}

func BenchmarkAccessVersioned(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		h := benchHierarchy()
		h.AccessVersioned(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.AccessVersioned(1)
		}
	})
	b.Run("miss", func(b *testing.B) {
		h := benchHierarchy()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.AccessVersioned(missLine(i))
		}
	})
}

func BenchmarkInvalidate(b *testing.B) {
	// Each iteration fills the line and then invalidates it, so the
	// invalidation always finds the line resident (the expensive case:
	// every level clears a way).
	b.Run("resident", func(b *testing.B) {
		h := benchHierarchy()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(1)
			h.Invalidate(1)
		}
	})
	// The absent case scans every level and finds nothing — the shape
	// commit-time invalidation broadcasts hit on cores that never
	// touched the line (before the presence filter prunes them).
	b.Run("absent", func(b *testing.B) {
		h := benchHierarchy()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Invalidate(1)
		}
	})
}

// TestHotPathsAllocFree asserts the three hot paths never allocate, in
// either regime — a steady-state allocation here would put GC pressure
// proportional to simulated memory traffic on every experiment.
func TestHotPathsAllocFree(t *testing.T) {
	h := benchHierarchy()
	n := 0
	cases := []struct {
		name string
		f    func()
	}{
		{"Access/hit", func() { h.Access(1) }},
		{"Access/miss", func() { h.Access(missLine(n)); n++ }},
		{"AccessVersioned/hit", func() { h.AccessVersioned(1) }},
		{"AccessVersioned/miss", func() { h.AccessVersioned(missLine(n)); n++ }},
		{"Invalidate", func() { h.Access(1); h.Invalidate(1) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}
