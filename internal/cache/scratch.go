package cache

// geometry identifies interchangeable level backing arrays: two levels
// with the same set and way counts have identically sized tag/stamp
// storage.
type geometry struct {
	sets, ways int
}

// Scratch recycles the tag/stamp arrays of simulated cache levels across
// simulations. A full hierarchy allocates several megabytes per cell
// (Table 1's 32 MiB L3 alone is half a million tag/stamp pairs), which
// dominated the per-cell setup cost of the evaluation sweeps; with a
// scratch, a worker's next cell reuses the previous cell's arrays.
//
// Determinism: an acquired level is reset to the exact state a fresh
// allocation would have (zero tags, zero stamps, zero clock), so a cell
// behaves bit-identically whether its arrays are fresh or recycled.
//
// A Scratch is not safe for concurrent use. The harness keeps one per
// experiment worker (shared-nothing), matching the runner's cell
// execution model. A nil *Scratch is valid and disables pooling.
type Scratch struct {
	free map[geometry][]*level
}

// NewScratch returns an empty pool.
func NewScratch() *Scratch {
	return &Scratch{free: make(map[geometry][]*level)}
}

// acquire returns a recycled level of the given geometry reset to its
// pristine state, or nil when the pool has none (or s is nil).
func (s *Scratch) acquire(sets, ways int) *level {
	if s == nil {
		return nil
	}
	g := geometry{sets: sets, ways: ways}
	pool := s.free[g]
	if len(pool) == 0 {
		return nil
	}
	l := pool[len(pool)-1]
	s.free[g] = pool[:len(pool)-1]
	clear(l.tags)
	clear(l.stamps)
	l.clock = 0
	return l
}

// release returns a level's arrays to the pool. Safe on a nil Scratch or
// a nil level (both no-ops).
func (s *Scratch) release(l *level) {
	if s == nil || l == nil {
		return
	}
	g := geometry{sets: l.sets, ways: l.ways}
	s.free[g] = append(s.free[g], l)
}

// Release returns the shared L3's arrays to the configured scratch pool.
// The Shared must not be used afterwards.
func (s *Shared) Release() {
	s.cfg.Scratch.release(s.l3)
	s.cfg.Scratch.release(s.mvm)
	s.l3, s.mvm = nil, nil
}

// Release returns one core's private arrays to the configured scratch
// pool. The Hierarchy must not be used afterwards; the shared L3 is
// released separately via Shared.Release.
func (h *Hierarchy) Release() {
	h.cfg.Scratch.release(h.l1)
	h.cfg.Scratch.release(h.l2)
	h.cfg.Scratch.release(h.xlate)
	h.l1, h.l2, h.xlate = nil, nil, nil
}
