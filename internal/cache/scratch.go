package cache

// geometry identifies interchangeable level backing arrays: two levels
// with the same set and way counts have identically sized tag/stamp
// storage.
type geometry struct {
	sets, ways int
}

// maxPoolPerGeometry caps how many idle levels a pool keeps per geometry.
// A sweep needs at most one L1/L2/xlate per simulated core, and the
// evaluated core counts top out at 64 (Figure 8), so the cap never causes
// steady-state reallocation; it only stops a sweep that mixes geometries
// (e.g. scaling cache sizes) from pinning every retired variant's
// multi-megabyte arrays forever.
const maxPoolPerGeometry = 64

// Scratch recycles the tag/stamp arrays of simulated cache levels across
// simulations. A full hierarchy allocates several megabytes per cell
// (Table 1's 32 MiB L3 alone is half a million tag/stamp pairs), which
// dominated the per-cell setup cost of the evaluation sweeps; with a
// scratch, a worker's next cell reuses the previous cell's arrays.
//
// Determinism: an acquired level is reset to the exact state a fresh
// allocation would have (zero tags, zero stamps, zero clock, zero MRU
// predictions), so a cell behaves bit-identically whether its arrays are
// fresh or recycled. The reset clears only the sets the previous owner
// dirtied (see level.reset), not the whole array.
//
// A Scratch is not safe for concurrent use. The harness keeps one per
// experiment worker (shared-nothing), matching the runner's cell
// execution model. A nil *Scratch is valid and disables pooling.
type Scratch struct {
	free map[geometry][]*level
	// presence pools pristine presence-filter bit tables (see
	// Presence.Release): the paged spines and their touched pages carry
	// over to the next cell instead of being reallocated.
	presence []Presence
}

// NewScratch returns an empty pool.
func NewScratch() *Scratch {
	return &Scratch{free: make(map[geometry][]*level)}
}

// acquire returns a recycled level of the given geometry reset to its
// pristine state, or nil when the pool has none (or s is nil).
func (s *Scratch) acquire(sets, ways int) *level {
	if s == nil {
		return nil
	}
	g := geometry{sets: sets, ways: ways}
	pool := s.free[g]
	if len(pool) == 0 {
		return nil
	}
	l := pool[len(pool)-1]
	s.free[g] = pool[:len(pool)-1]
	l.reset()
	return l
}

// release returns a level's arrays to the pool, unless the pool already
// holds maxPoolPerGeometry levels of that geometry (the level is then
// left to the garbage collector). Safe on a nil Scratch or a nil level
// (both no-ops).
func (s *Scratch) release(l *level) {
	if s == nil || l == nil {
		return
	}
	g := geometry{sets: l.sets, ways: l.ways}
	if len(s.free[g]) >= maxPoolPerGeometry {
		return
	}
	s.free[g] = append(s.free[g], l)
}

// Release returns the shared L3's arrays to the configured scratch pool.
// The Shared must not be used afterwards.
func (s *Shared) Release() {
	s.cfg.Scratch.release(s.l3)
	s.cfg.Scratch.release(s.mvm)
	s.l3, s.mvm = nil, nil
}

// Release returns one core's private arrays to the configured scratch
// pool. The Hierarchy must not be used afterwards; the shared L3 is
// released separately via Shared.Release.
func (h *Hierarchy) Release() {
	h.cfg.Scratch.release(h.l1)
	h.cfg.Scratch.release(h.l2)
	h.cfg.Scratch.release(h.xlate)
	h.l1, h.l2, h.xlate = nil, nil, nil
}
