package cache

import "repro/internal/mem"

// Presence is a conservative per-line record of which cores may hold a
// cache line in a private structure — a snoop filter with no false
// negatives. A private cache fills only on its own core's accesses, so an
// engine that calls Note on every access path knows that any core whose
// bit is clear cannot hold the line; commit-time invalidation then visits
// exactly the noted cores instead of broadcasting to every core. Skipped
// cores would have experienced a no-op invalidation, so the filtered
// publish is observably identical to the broadcast it replaces.
//
// Bits go stale when a line is silently evicted — that costs one no-op
// invalidate later, never a missed one. Drain clears the bits of the
// cores it returns, because after the caller invalidates them the line is
// definitely absent there; a core that re-fills the line re-Notes it.
//
// Only cores 0..63 are tracked (one bit each). A core with a larger ID
// has a zero bit — Note is a no-op and Drain never returns it — so
// callers must keep broadcasting to cores beyond 64.
type Presence struct {
	bits []uint64
}

// Note records that the core with the given bit (CoreBit of its ID) may
// now hold line. Call it before the access's cycle charge is ticked: the
// fill itself happens before the simulated yield, so the record must too,
// or a commit interleaved with the yield would skip a real invalidation.
func (p *Presence) Note(line mem.Line, bit uint64) {
	i := uint64(line)
	if i < uint64(len(p.bits)) {
		p.bits[i] |= bit
		return
	}
	p.grow(i)
	p.bits[i] |= bit
}

// Drain returns the tracked cores other than self that may hold line and
// clears their bits; the caller must invalidate the line in exactly the
// returned cores. The self bit is left in place — the committing core
// keeps the line resident.
func (p *Presence) Drain(line mem.Line, selfBit uint64) uint64 {
	i := uint64(line)
	if i >= uint64(len(p.bits)) {
		return 0
	}
	others := p.bits[i] &^ selfBit
	p.bits[i] &= selfBit
	return others
}

// grow extends the table to cover index i (powers of two, like mem.Dense).
func (p *Presence) grow(i uint64) {
	n := uint64(len(p.bits))
	if n < 1024 {
		n = 1024
	}
	for n <= i {
		n *= 2
	}
	nb := make([]uint64, n)
	copy(nb, p.bits)
	p.bits = nb
}

// CoreBit returns the presence bit of core id: 1<<id for tracked cores,
// zero (never noted, never drained) beyond 63.
func CoreBit(id int) uint64 {
	if id >= 64 {
		return 0
	}
	return uint64(1) << uint(id)
}
