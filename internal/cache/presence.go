package cache

import "repro/internal/mem"

// Presence is a conservative per-line record of which cores may hold a
// cache line in a private structure — a snoop filter with no false
// negatives. A private cache fills only on its own core's accesses, so an
// engine that calls Note on every access path knows that any core whose
// bit is clear cannot hold the line; commit-time invalidation then visits
// exactly the noted cores instead of broadcasting to every core. Skipped
// cores would have experienced a no-op invalidation, so the filtered
// publish is observably identical to the broadcast it replaces.
//
// Bits go stale when a line is silently evicted — that costs one no-op
// invalidate later, never a missed one. Drain clears the bits of the
// cores it returns, because after the caller invalidates them the line is
// definitely absent there; a core that re-fills the line re-Notes it.
//
// Only cores 0..63 are tracked (one bit each). A core with a larger ID
// has a zero bit — Note is a no-op and Drain never returns it — so
// callers must keep broadcasting to cores beyond 64.
//
// The bit table is a paged store (mem.Paged): at serving-scale footprints
// the line-number space runs to 2²⁴ and beyond, and a dense table sized
// by the maximum line ever noted would dwarf the touched set. Engines
// built with a Scratch recycle pristine spines across cells via
// NewPresence/Release — the per-cell reset walks only the dirty pages.
type Presence struct {
	bits mem.Paged[uint64]
}

// NewPresence returns a presence filter, reusing a pristine recycled bit
// table from s when one is available (s may be nil). When reference is
// set the filter uses the retained dense backing (the house Reference
// pattern); reference tables are never pooled.
func NewPresence(s *Scratch, reference bool) Presence {
	if reference {
		var p Presence
		p.bits.SetReference()
		return p
	}
	if s != nil && len(s.presence) > 0 {
		p := s.presence[len(s.presence)-1]
		s.presence = s.presence[:len(s.presence)-1]
		return p
	}
	return Presence{}
}

// Release resets the bit table in O(dirty pages) and donates it to s for
// the next cell's NewPresence. The Presence must not be used afterwards.
// Safe with a nil Scratch (the table is left to the garbage collector);
// reference-backed tables are never pooled.
func (p *Presence) Release(s *Scratch) {
	if s == nil || p.bits.Reference() {
		return
	}
	p.bits.Reset()
	s.presence = append(s.presence, *p)
	p.bits = mem.Paged[uint64]{}
}

// Note records that the core with the given bit (CoreBit of its ID) may
// now hold line. Call it before the access's cycle charge is ticked: the
// fill itself happens before the simulated yield, so the record must too,
// or a commit interleaved with the yield would skip a real invalidation.
func (p *Presence) Note(line mem.Line, bit uint64) {
	if bit == 0 {
		return // untracked core (id >= 64): callers broadcast to it anyway
	}
	*p.bits.Slot(uint64(line)) |= bit
}

// Drain returns the tracked cores other than self that may hold line and
// clears their bits; the caller must invalidate the line in exactly the
// returned cores. The self bit is left in place — the committing core
// keeps the line resident. A drain that returns no cores writes nothing,
// so read-mostly lines never dirty their page.
func (p *Presence) Drain(line mem.Line, selfBit uint64) uint64 {
	v := p.bits.Load(uint64(line))
	others := v &^ selfBit
	if others != 0 {
		*p.bits.Slot(uint64(line)) = v & selfBit
	}
	return others
}

// CoreBit returns the presence bit of core id: 1<<id for tracked cores,
// zero (never noted, never drained) beyond 63.
func CoreBit(id int) uint64 {
	if id >= 64 {
		return 0
	}
	return uint64(1) << uint(id)
}
