// Package cache models the simulated memory hierarchy of Table 1 in the
// SI-TM paper: per-core private L1/L2 caches and a shared L3, each
// set-associative with LRU replacement, plus the MVM indirection penalty and
// the optional translation cache of §3.2/§4.1.
//
// The model charges latency per access; it does not model MESI states. On
// transaction commit, written lines are invalidated in other cores' private
// caches ("snapshots need to be invalidated during commit", §4.4), which is
// the part of coherency that matters for the paper's timing shape.
package cache

import "repro/internal/mem"

// Config mirrors Table 1 of the paper.
type Config struct {
	L1SizeBytes int // 32 KiB
	L1Ways      int // 4
	L1Latency   uint64

	L2SizeBytes int // 256 KiB
	L2Ways      int // 8
	L2Latency   uint64

	L3SizeBytes int // 32 MiB total
	L3Ways      int // 16
	L3Latency   uint64
	// MVMPartBytes of the L3 form the MVM partition that caches
	// version-list lines (Table 1: 8 MiB).
	MVMPartBytes int

	MemLatency uint64 // 100 cycles

	// XlateEntries is the size of the per-core translation cache that
	// holds recently used version-list lines (§3.2). A hit hides the
	// MVM indirection latency; 0 disables the cache.
	XlateEntries int

	// Scratch, when non-nil, recycles level backing arrays across
	// simulations (see Scratch). It affects only allocation, never
	// simulated behaviour. Not part of the simulated architecture.
	Scratch *Scratch
}

// DefaultConfig returns the simulated architecture of Table 1.
func DefaultConfig() Config {
	return Config{
		L1SizeBytes: 32 << 10, L1Ways: 4, L1Latency: 4,
		L2SizeBytes: 256 << 10, L2Ways: 8, L2Latency: 8,
		L3SizeBytes: 32 << 20, L3Ways: 16, L3Latency: 30,
		MVMPartBytes: 8 << 20,
		MemLatency:   100,
		XlateEntries: 64,
	}
}

// level is one set-associative cache with LRU replacement. Power-of-two
// set counts index with a mask; other sizes (e.g. the 24 MiB data region
// left after carving the MVM partition out of the L3) fall back to
// modulo.
type level struct {
	sets    int
	ways    int
	tags    []mem.Line // sets*ways entries; 0 means empty (line 0 unused)
	stamps  []uint64   // LRU timestamps, parallel to tags
	clock   uint64
	setMask uint64 // sets-1 when sets is a power of two, else 0
}

func newLevel(sizeBytes, ways int, s *Scratch) *level {
	sets := sizeBytes / mem.LineBytes / ways
	if sets <= 0 {
		panic("cache: set count must be positive")
	}
	if l := s.acquire(sets, ways); l != nil {
		return l
	}
	l := &level{
		sets: sets, ways: ways,
		tags:   make([]mem.Line, sets*ways),
		stamps: make([]uint64, sets*ways),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	return l
}

// setOf maps a line to its set index.
func (l *level) setOf(line mem.Line) int {
	if l.setMask != 0 {
		return int(uint64(line) & l.setMask)
	}
	return int(uint64(line) % uint64(l.sets))
}

// access looks up line; on miss it fills the line, evicting LRU.
// It reports whether the access hit.
func (l *level) access(line mem.Line) bool {
	l.clock++
	base := l.setOf(line) * l.ways
	// Subslice the set once so the way scan runs without per-element
	// bounds checks — this loop is the hottest line of the simulator.
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	victim, oldest := 0, ^uint64(0)
	for i, tag := range tags {
		if tag == line {
			stamps[i] = l.clock
			return true
		}
		if stamps[i] < oldest {
			oldest, victim = stamps[i], i
		}
	}
	tags[victim] = line
	stamps[victim] = l.clock
	return false
}

// invalidate removes line if present.
func (l *level) invalidate(line mem.Line) {
	base := l.setOf(line) * l.ways
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	for i, tag := range tags {
		if tag == line {
			tags[i] = 0
			stamps[i] = 0
		}
	}
}

// Stats counts hits per level for one core.
type Stats struct {
	L1Hits, L2Hits, L3Hits, MemAccesses uint64
	XlateHits, XlateMisses              uint64
}

// Hierarchy is the private L1/L2 (+ translation cache) of one core wired to
// a shared L3. It is used only under the deterministic scheduler, so the
// shared L3 needs no locking.
type Hierarchy struct {
	cfg   Config
	l1    *level
	l2    *level
	l3    *Shared
	xlate *level
	Stats Stats
}

// Shared is the L3 cache shared by all cores. Per Table 1 it is split
// into a data region and an MVM partition that caches version-list lines
// ("both the version list as well as multiversioned data is stored in the
// MVM partition"; "version list entries can be cached in the L3", §3.2).
type Shared struct {
	cfg Config
	l3  *level
	mvm *level
}

// NewShared builds the shared L3 for cfg: the MVM partition is carved out
// of the configured L3 size.
func NewShared(cfg Config) *Shared {
	dataBytes := cfg.L3SizeBytes - cfg.MVMPartBytes
	if dataBytes <= 0 {
		dataBytes = cfg.L3SizeBytes
	}
	s := &Shared{cfg: cfg, l3: newLevel(dataBytes, cfg.L3Ways, cfg.Scratch)}
	if cfg.MVMPartBytes > 0 {
		s.mvm = newLevel(cfg.MVMPartBytes, cfg.L3Ways, cfg.Scratch)
	}
	return s
}

// NewHierarchy builds one core's private hierarchy attached to shared.
func NewHierarchy(cfg Config, shared *Shared) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1SizeBytes, cfg.L1Ways, cfg.Scratch), l2: newLevel(cfg.L2SizeBytes, cfg.L2Ways, cfg.Scratch), l3: shared}
	if cfg.XlateEntries > 0 {
		h.xlate = newLevel(cfg.XlateEntries*mem.LineBytes, 4, cfg.Scratch)
	}
	return h
}

// Access charges a plain (non-versioned) access to line and returns its
// latency in cycles.
func (h *Hierarchy) Access(line mem.Line) uint64 {
	if h.l1.access(line) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency
}

// AccessVersioned charges a transactional access to a multiversioned line.
// If the access is served by a private cache the indirection layer is not
// involved (L1/L2 hold the already-resolved version, §3.2). On an L2 miss
// the version-list entry must be consulted before the data line: a
// translation-cache hit hides that lookup, otherwise the indirection adds
// one L3-latency round trip ("less costly than two full round trip times").
func (h *Hierarchy) AccessVersioned(line mem.Line) uint64 {
	if h.l1.access(line) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	// On an L2 miss the version-list entry must be consulted before
	// the data line: the translation cache hides the lookup entirely;
	// otherwise the entry is fetched from the L3's MVM partition, or
	// from memory when not resident there.
	var indirection uint64
	if h.xlate != nil && h.xlate.access(xlateLine(line)) {
		h.Stats.XlateHits++
	} else {
		h.Stats.XlateMisses++
		if h.l3.mvm != nil && h.l3.mvm.access(xlateLine(line)) {
			indirection = h.cfg.L3Latency
		} else if h.l3.mvm != nil {
			indirection = h.cfg.MemLatency
		} else {
			indirection = h.cfg.L3Latency
		}
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency + indirection
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency + indirection
}

// Invalidate drops line from the private caches of this core. Engines call
// it on every core other than the committer for each committed line (§4.4).
// The version-list entry changed too, so the cached translation (and the
// partition-resident version-list line) are dropped as well.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *Hierarchy) Invalidate(line mem.Line) {
	h.l1.invalidate(line)
	h.l2.invalidate(line)
	if h.xlate != nil {
		h.xlate.invalidate(xlateLine(line))
	}
	if h.l3.mvm != nil {
		h.l3.mvm.invalidate(xlateLine(line))
	}
}

// xlateLine maps a data line to the version-list line that holds its
// indirection entry: one 64-byte line holds eight version-list entries
// (§3.2 — "a single cache line contains eight version references").
func xlateLine(line mem.Line) mem.Line { return line >> 3 }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }
