// Package cache models the simulated memory hierarchy of Table 1 in the
// SI-TM paper: per-core private L1/L2 caches and a shared L3, each
// set-associative with LRU replacement, plus the MVM indirection penalty and
// the optional translation cache of §3.2/§4.1.
//
// The model charges latency per access; it does not model MESI states. On
// transaction commit, written lines are invalidated in other cores' private
// caches ("snapshots need to be invalidated during commit", §4.4), which is
// the part of coherency that matters for the paper's timing shape.
//
// Every probe used to pay for a full way scan plus an LRU stamp update,
// and that loop dominated sweep wall-time. The implementation here keeps
// the architecture of slow.go observably intact but adds a per-set MRU
// way prediction: each set remembers its most-recently-used way, and a
// probe first compares that single tag. A predicted hit touches one tag
// word and updates nothing — the MRU way already carries the maximal LRU
// stamp in its set, so skipping the stamp write preserves the relative
// stamp order that decides every future eviction. Only mispredictions
// fall back to the scan-and-fill path. Equivalence with the reference
// implementation (slowLevel/SlowHierarchy in slow.go) is pinned by a
// property test over random access/invalidate/release streams, an
// engine-level sweep in internal/tmtest, and the harness-level
// TestFiguresByteIdenticalFastVsSlowCache.
package cache

import (
	"math/bits"

	"repro/internal/mem"
)

// Config mirrors Table 1 of the paper.
type Config struct {
	L1SizeBytes int // 32 KiB
	L1Ways      int // 4
	L1Latency   uint64

	L2SizeBytes int // 256 KiB
	L2Ways      int // 8
	L2Latency   uint64

	L3SizeBytes int // 32 MiB total
	L3Ways      int // 16
	L3Latency   uint64
	// MVMPartBytes of the L3 form the MVM partition that caches
	// version-list lines (Table 1: 8 MiB).
	MVMPartBytes int

	MemLatency uint64 // 100 cycles

	// XlateEntries is the size of the per-core translation cache that
	// holds recently used version-list lines (§3.2). A hit hides the
	// MVM indirection latency; 0 disables the cache.
	XlateEntries int

	// Scratch, when non-nil, recycles level backing arrays across
	// simulations (see Scratch). It affects only allocation, never
	// simulated behaviour. Not part of the simulated architecture.
	Scratch *Scratch

	// Reference, when true, routes every access through the verbatim
	// pre-way-prediction implementation (SlowHierarchy) instead of the
	// fast path. Observable behaviour is identical either way — that is
	// exactly what the differential tests pin — so this is a debugging
	// and verification switch, not a modelling choice.
	Reference bool
}

// DefaultConfig returns the simulated architecture of Table 1.
func DefaultConfig() Config {
	return Config{
		L1SizeBytes: 32 << 10, L1Ways: 4, L1Latency: 4,
		L2SizeBytes: 256 << 10, L2Ways: 8, L2Latency: 8,
		L3SizeBytes: 32 << 20, L3Ways: 16, L3Latency: 30,
		MVMPartBytes: 8 << 20,
		MemLatency:   100,
		XlateEntries: 64,
	}
}

// level is one set-associative cache with LRU replacement and per-set MRU
// way prediction. Power-of-two set counts index with a mask; other sizes
// (e.g. the 24 MiB data region left after carving the MVM partition out
// of the L3) divide by a precomputed reciprocal instead of paying a
// hardware divide per probe.
type level struct {
	sets    int
	ways    int
	tags    []mem.Line // sets*ways entries; 0 means empty (line 0 unused)
	stamps  []uint64   // LRU timestamps, parallel to tags
	mru     []int32    // per-set predicted way: last way hit or filled
	clock   uint64
	setMask uint64 // sets-1 when sets is a power of two, else 0
	// modMul is ceil(2^64/sets), the Lemire reciprocal used to compute
	// line % sets with two multiplies when sets is not a power of two
	// and the line fits in 32 bits (real lines always do; the oracle's
	// plain modulo remains the fallback for adversarial inputs).
	modMul uint64

	// Dirty-set tracking: reset (scratch reuse) restores pristine state
	// by clearing only the sets a fill ever touched, instead of
	// memclr-ing multi-megabyte tag/stamp arrays per simulation cell.
	dirtyBits []uint64 // one bit per set
	dirtySets []int32  // sets with their dirty bit set, any order
}

func newLevel(sizeBytes, ways int, s *Scratch) *level {
	sets := sizeBytes / mem.LineBytes / ways
	if sets <= 0 {
		panic("cache: set count must be positive")
	}
	if l := s.acquire(sets, ways); l != nil {
		return l
	}
	l := &level{
		sets: sets, ways: ways,
		tags:      make([]mem.Line, sets*ways),
		stamps:    make([]uint64, sets*ways),
		mru:       make([]int32, sets),
		dirtyBits: make([]uint64, (sets+63)/64),
		dirtySets: make([]int32, 0, sets),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	} else {
		l.modMul = ^uint64(0)/uint64(sets) + 1
	}
	return l
}

// setOf maps a line to its set index. It must agree with
// slowLevel.setOf on every input.
func (l *level) setOf(line mem.Line) int {
	if l.setMask != 0 {
		return int(uint64(line) & l.setMask)
	}
	n := uint64(line)
	if n>>32 == 0 {
		// Lemire's fastmod: for n, sets < 2^32 the high half of
		// (n*ceil(2^64/sets))*sets is exactly n % sets.
		hi, _ := bits.Mul64(l.modMul*n, uint64(l.sets))
		return int(hi)
	}
	return int(n % uint64(l.sets))
}

// access looks up line; on miss it fills the line, evicting LRU.
// It reports whether the access hit.
//
// Fast path: if the set's predicted (MRU) way holds the line, the probe
// is a single tag compare with no clock tick and no stamp write. That is
// observably identical to the oracle's hit-with-stamp-update because the
// predicted way already holds the strictly maximal stamp in its set —
// every code path that writes a stamp also repoints mru at that way — so
// rewriting it with a larger clock value cannot change which way any
// future eviction picks, and empty sets never fast-hit (their tags are 0
// and line 0 is unused).
// Line 0 must always take the scan: the oracle cannot distinguish "way
// holds line 0" from "way is empty", so access(0) hits the first empty
// way of its set and stamps it (xlateLine maps data lines 1..7 there) —
// a quirk the predicted path would otherwise resolve at the wrong way.
func (l *level) access(line mem.Line) bool {
	set := l.setOf(line)
	if line != 0 && l.tags[set*l.ways+int(l.mru[set])] == line {
		return true
	}
	return l.accessScan(line, set)
}

// accessScan is the misprediction path: the oracle's scan-and-fill loop,
// plus the MRU and dirty-set bookkeeping the fast path relies on.
func (l *level) accessScan(line mem.Line, set int) bool {
	l.clock++
	base := set * l.ways
	// Subslice the set once so the way scan runs without per-element
	// bounds checks.
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	victim, oldest := 0, ^uint64(0)
	for i, tag := range tags {
		if tag == line {
			stamps[i] = l.clock
			l.mru[set] = int32(i)
			// A genuine hit implies the set was filled before and is
			// already dirty — except the line-0 quirk, where a "hit"
			// on an empty way can be a pristine set's first write.
			l.markDirty(set)
			return true
		}
		if stamps[i] < oldest {
			oldest, victim = stamps[i], i
		}
	}
	tags[victim] = line
	stamps[victim] = l.clock
	l.mru[set] = int32(victim)
	l.markDirty(set)
	return false
}

// markDirty records that set is no longer in its pristine all-zero state,
// so reset (scratch reuse) knows to clear it. Fills and line-0 hits are
// the only transitions out of pristine; real hits and invalidations act
// on sets a fill already dirtied.
func (l *level) markDirty(set int) {
	w, b := set>>6, uint64(1)<<(set&63)
	if l.dirtyBits[w]&b == 0 {
		l.dirtyBits[w] |= b
		l.dirtySets = append(l.dirtySets, int32(set))
	}
}

// invalidate removes line if present. The MRU prediction is left alone:
// if the invalidated way was predicted, its tag is now 0, which can never
// fast-hit, so the next probe of that set takes the scan path and
// re-trains the prediction.
func (l *level) invalidate(line mem.Line) {
	base := l.setOf(line) * l.ways
	tags := l.tags[base : base+l.ways]
	for i, tag := range tags {
		if tag == line {
			tags[i] = 0
			l.stamps[base+i] = 0
		}
	}
}

// reset restores the pristine (fresh-allocation) state by clearing only
// the sets that were ever filled.
func (l *level) reset() {
	for _, s := range l.dirtySets {
		base := int(s) * l.ways
		clear(l.tags[base : base+l.ways])
		clear(l.stamps[base : base+l.ways])
		l.mru[s] = 0
	}
	clear(l.dirtyBits)
	l.dirtySets = l.dirtySets[:0]
	l.clock = 0
}

// Stats counts hits per level for one core. Accesses is the total number
// of charged accesses (Access + AccessVersioned); exactly one of L1Hits,
// L2Hits, L3Hits, MemAccesses increments per access, so their sum must
// equal Accesses — internal/tmtest sweeps that invariant across engines.
type Stats struct {
	L1Hits, L2Hits, L3Hits, MemAccesses uint64
	XlateHits, XlateMisses              uint64
	Accesses                            uint64
}

// Hierarchy is the private L1/L2 (+ translation cache) of one core wired to
// a shared L3. It is used only under the deterministic scheduler, so the
// shared L3 needs no locking.
type Hierarchy struct {
	cfg   Config
	l1    *level
	l2    *level
	l3    *Shared
	xlate *level
	// ref, in Config.Reference mode, is the verbatim pre-fast-path
	// implementation every call delegates to; Stats mirrors its stats.
	ref   *SlowHierarchy
	Stats Stats
}

// Shared is the L3 cache shared by all cores. Per Table 1 it is split
// into a data region and an MVM partition that caches version-list lines
// ("both the version list as well as multiversioned data is stored in the
// MVM partition"; "version list entries can be cached in the L3", §3.2).
type Shared struct {
	cfg Config
	l3  *level
	mvm *level
	ref *SlowShared
}

// NewShared builds the shared L3 for cfg: the MVM partition is carved out
// of the configured L3 size.
func NewShared(cfg Config) *Shared {
	if cfg.Reference {
		return &Shared{cfg: cfg, ref: NewSlowShared(cfg)}
	}
	dataBytes := cfg.L3SizeBytes - cfg.MVMPartBytes
	if dataBytes <= 0 {
		dataBytes = cfg.L3SizeBytes
	}
	s := &Shared{cfg: cfg, l3: newLevel(dataBytes, cfg.L3Ways, cfg.Scratch)}
	if cfg.MVMPartBytes > 0 {
		s.mvm = newLevel(cfg.MVMPartBytes, cfg.L3Ways, cfg.Scratch)
	}
	return s
}

// NewHierarchy builds one core's private hierarchy attached to shared.
func NewHierarchy(cfg Config, shared *Shared) *Hierarchy {
	if shared.ref != nil {
		return &Hierarchy{cfg: cfg, l3: shared, ref: NewSlowHierarchy(cfg, shared.ref)}
	}
	h := &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1SizeBytes, cfg.L1Ways, cfg.Scratch), l2: newLevel(cfg.L2SizeBytes, cfg.L2Ways, cfg.Scratch), l3: shared}
	if cfg.XlateEntries > 0 {
		h.xlate = newLevel(cfg.XlateEntries*mem.LineBytes, 4, cfg.Scratch)
	}
	return h
}

// Access charges a plain (non-versioned) access to line and returns its
// latency in cycles.
func (h *Hierarchy) Access(line mem.Line) uint64 {
	if h.ref != nil {
		lat := h.ref.Access(line)
		h.Stats = h.ref.Stats
		return lat
	}
	h.Stats.Accesses++
	// The L1 predicted-hit probe of (*level).access is open-coded here:
	// that method is beyond the compiler's inlining budget, and the L1
	// fast hit is the single most common outcome of the whole simulator.
	l1 := h.l1
	set := l1.setOf(line)
	if line != 0 && l1.tags[set*l1.ways+int(l1.mru[set])] == line {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if l1.accessScan(line, set) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency
}

// AccessVersioned charges a transactional access to a multiversioned line.
// If the access is served by a private cache the indirection layer is not
// involved (L1/L2 hold the already-resolved version, §3.2). On an L2 miss
// the version-list entry must be consulted before the data line: a
// translation-cache hit hides that lookup, otherwise the indirection adds
// one L3-latency round trip ("less costly than two full round trip times").
// The xlate/MVM-partition/L3 probes are fused into one pass: the
// version-list line is computed once and each probe is the single-compare
// fast path of its level.
func (h *Hierarchy) AccessVersioned(line mem.Line) uint64 {
	if h.ref != nil {
		lat := h.ref.AccessVersioned(line)
		h.Stats = h.ref.Stats
		return lat
	}
	h.Stats.Accesses++
	// Same open-coded L1 predicted-hit probe as Access.
	l1 := h.l1
	set := l1.setOf(line)
	if line != 0 && l1.tags[set*l1.ways+int(l1.mru[set])] == line {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if l1.accessScan(line, set) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	// On an L2 miss the version-list entry must be consulted before
	// the data line: the translation cache hides the lookup entirely;
	// otherwise the entry is fetched from the L3's MVM partition, or
	// from memory when not resident there.
	xl := xlateLine(line)
	var indirection uint64
	if h.xlate != nil && h.xlate.access(xl) {
		h.Stats.XlateHits++
	} else {
		h.Stats.XlateMisses++
		if h.l3.mvm == nil || h.l3.mvm.access(xl) {
			indirection = h.cfg.L3Latency
		} else {
			indirection = h.cfg.MemLatency
		}
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency + indirection
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency + indirection
}

// PredictedHit reports, without touching any cache state, whether an
// Access/AccessVersioned of line would take the L1 predicted-hit fast
// path — a single tag compare against the set's MRU way that charges
// L1Latency and mutates nothing (no clock tick, no stamp write, no MRU
// repoint, no lower-level traffic). Engines use it to certify an access
// as non-interacting before batching it past the conductor's heap root
// (sched.Thread.TickHinted): a predicted hit is purely observational, so
// it commutes with anything a parked thread could do below the horizon.
//
// In Reference mode it always reports false: the oracle hierarchy's hits
// rewrite LRU stamps, so no access is mutation-free there.
func (h *Hierarchy) PredictedHit(line mem.Line) bool {
	if h.ref != nil {
		return false
	}
	l1 := h.l1
	set := l1.setOf(line)
	return line != 0 && l1.tags[set*l1.ways+int(l1.mru[set])] == line
}

// Invalidate drops line from the private caches of this core, the cached
// translation and the partition-resident version-list line — the full
// per-core invalidation of §4.4. Engines that split the work (see
// InvalidatePrivate/InvalidateVersions) must preserve exactly this
// composition.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *Hierarchy) Invalidate(line mem.Line) {
	if h.ref != nil {
		h.ref.Invalidate(line)
		return
	}
	h.l1.invalidate(line)
	h.l2.invalidate(line)
	if h.xlate != nil {
		h.xlate.invalidate(xlateLine(line))
	}
	if h.l3.mvm != nil {
		h.l3.mvm.invalidate(xlateLine(line))
	}
}

// InvalidateData drops line from this core's private data caches (L1+L2)
// only. It is the right call for engines that never perform versioned
// accesses (2PL, SONTM): their translation caches and the MVM partition
// are never filled, so skipping those scans is observably identical to
// the full Invalidate — in Reference mode it therefore delegates to the
// oracle's full invalidation.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *Hierarchy) InvalidateData(line mem.Line) {
	if h.ref != nil {
		h.ref.Invalidate(line)
		return
	}
	h.l1.invalidate(line)
	h.l2.invalidate(line)
}

// InvalidatePrivate drops line from this core's private caches and cached
// translation, but not the shared MVM partition. The SI-TM commit calls
// it once per other core and pairs it with a single
// Shared.InvalidateVersions per line: the partition is shared, so
// scanning it once per core (as the fused Invalidate does) is idempotent
// redundancy. In Reference mode it delegates to the oracle's full
// per-core invalidation, reproducing the original redundancy exactly.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *Hierarchy) InvalidatePrivate(line mem.Line) {
	if h.ref != nil {
		h.ref.Invalidate(line)
		return
	}
	h.l1.invalidate(line)
	h.l2.invalidate(line)
	if h.xlate != nil {
		h.xlate.invalidate(xlateLine(line))
	}
}

// InvalidateXlate drops the cached translation of line — the version-list
// line holding its indirection entry — from this core's translation cache
// only. Presence-filtered SI-TM commits pair it with InvalidateData: the
// translation cache is keyed at version-list-line granularity, so the set
// of cores that may hold a translation differs from the set that may hold
// the data line, and the two are filtered independently. In Reference
// mode it delegates to the oracle's full per-core invalidation, whose
// extra scans are idempotent no-ops on structures the caller's paired
// calls already cover.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *Hierarchy) InvalidateXlate(line mem.Line) {
	if h.ref != nil {
		h.ref.Invalidate(line)
		return
	}
	if h.xlate != nil {
		h.xlate.invalidate(xlateLine(line))
	}
}

// InvalidateVersions drops the version-list line holding line's
// indirection entry from the shared MVM partition. Pair with
// InvalidatePrivate (or presence-filtered InvalidateData/InvalidateXlate);
// in Reference mode it scans the oracle's partition — possibly
// redundantly with per-core delegations, which is unobservable because
// invalidation is idempotent.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (s *Shared) InvalidateVersions(line mem.Line) {
	if s.ref != nil {
		s.ref.InvalidateVersions(line)
		return
	}
	if s.mvm != nil {
		s.mvm.invalidate(xlateLine(line))
	}
}

// xlateLine maps a data line to the version-list line that holds its
// indirection entry: one 64-byte line holds eight version-list entries
// (§3.2 — "a single cache line contains eight version references").
func xlateLine(line mem.Line) mem.Line { return line >> 3 }

// XlateLine exposes the data-line to version-list-line mapping for
// engines that track translation-cache presence (see Presence): the
// translation cache is keyed by version-list line, so presence of
// translations must be recorded at this granularity.
func XlateLine(line mem.Line) mem.Line { return xlateLine(line) }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }
