package cache

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// This file pins the way-predicted fast path in cache.go to the verbatim
// reference implementation in slow.go at the property level: random
// access/invalidate/release streams must observe identical latencies and
// identical stats from both. The engine-level pin lives in
// internal/tmtest and the report-level pin in internal/harness.

// diffConfigs are the geometries the property test sweeps: the paper's
// architecture plus deliberately awkward shapes — tiny caches so random
// streams actually evict, a non-power-of-two L3 data region (modulo
// indexing), no translation cache, and no MVM partition.
func diffConfigs() []Config {
	small := Config{
		L1SizeBytes: 2 << 10, L1Ways: 2, L1Latency: 4,
		L2SizeBytes: 4 << 10, L2Ways: 4, L2Latency: 8,
		L3SizeBytes: 24 << 10, L3Ways: 4, L3Latency: 30, // 24 KiB: non-power-of-two sets
		MVMPartBytes: 8 << 10,
		MemLatency:   100,
		XlateEntries: 8,
	}
	noXlate := small
	noXlate.XlateEntries = 0
	noMVM := small
	noMVM.MVMPartBytes = 0
	oneWay := small
	oneWay.L1Ways = 1
	oneWay.L2Ways = 1
	return []Config{DefaultConfig(), small, noXlate, noMVM, oneWay}
}

// diffPair is one simulated machine driven through both implementations.
type diffPair struct {
	cfg  Config
	sh   *Shared
	fast []*Hierarchy
	ssh  *SlowShared
	slow []*SlowHierarchy
}

func newDiffPair(cfg Config, cores int) *diffPair {
	p := &diffPair{cfg: cfg, sh: NewShared(cfg), ssh: NewSlowShared(cfg)}
	for i := 0; i < cores; i++ {
		p.fast = append(p.fast, NewHierarchy(cfg, p.sh))
		p.slow = append(p.slow, NewSlowHierarchy(cfg, p.ssh))
	}
	return p
}

// step applies one random operation to both sides and fails on any
// observable divergence. versioned gates AccessVersioned and the
// split-invalidation pattern (engines that never do versioned accesses
// use InvalidateData, whose equivalence only holds on such streams).
func (p *diffPair) step(t *testing.T, rng *rand.Rand, versioned bool) {
	t.Helper()
	core := rng.Intn(len(p.fast))
	// A small line space forces set conflicts; the occasional huge line
	// exercises the wide-modulo fallback of setOf.
	line := mem.Line(rng.Intn(192) + 1)
	if rng.Intn(64) == 0 {
		line = mem.Line(rng.Uint64() | 1<<40)
	}
	f, s := p.fast[core], p.slow[core]
	switch op := rng.Intn(10); {
	case op < 5: // plain access
		if got, want := f.Access(line), s.Access(line); got != want {
			t.Fatalf("core %d Access(%d) = %d, oracle %d", core, line, got, want)
		}
	case op < 8 && versioned: // versioned access
		if got, want := f.AccessVersioned(line), s.AccessVersioned(line); got != want {
			t.Fatalf("core %d AccessVersioned(%d) = %d, oracle %d", core, line, got, want)
		}
	case op < 9 && versioned:
		// SI-TM commit publish: every core but the committer drops its
		// private copies; the shared partition is scanned once (fast)
		// vs once per other core (oracle — idempotent redundancy).
		// Half the time the private drop is the fused InvalidatePrivate,
		// half the split InvalidateData + InvalidateXlate composition
		// the presence-filtered publish path issues (the two presence
		// tables may prune different core sets per line, so the engines
		// deliver the data and translation shootdowns independently).
		split := rng.Intn(2) == 0
		others := 0
		for i := range p.fast {
			if i != core {
				if split {
					p.fast[i].InvalidateData(line)
					p.fast[i].InvalidateXlate(line)
				} else {
					p.fast[i].InvalidatePrivate(line)
				}
				p.slow[i].Invalidate(line)
				others++
			}
		}
		if others > 0 {
			p.sh.InvalidateVersions(line)
		}
	case op < 9: // 2PL/SONTM commit publish: data caches only
		for i := range p.fast {
			if i != core {
				p.fast[i].InvalidateData(line)
				p.slow[i].Invalidate(line)
			}
		}
	default: // full fused invalidation (self), as tests and tools use it
		f.Invalidate(line)
		s.Invalidate(line)
	}
	if f.Stats != s.Stats {
		t.Fatalf("core %d stats diverge: fast %+v, oracle %+v", core, f.Stats, s.Stats)
	}
}

// TestDifferentialFastVsSlow drives random operation streams through the
// fast and reference hierarchies across geometries, core counts and
// scratch reuse (each session releases the fast side's arrays into a
// shared pool and rebuilds from it, so recycled state is compared against
// the always-fresh oracle).
func TestDifferentialFastVsSlow(t *testing.T) {
	for ci, cfg := range diffConfigs() {
		for _, cores := range []int{1, 3} {
			for _, versioned := range []bool{true, false} {
				rng := rand.New(rand.NewSource(int64(1000*ci + 10*cores + boolInt(versioned))))
				cfg := cfg
				cfg.Scratch = NewScratch()
				for session := 0; session < 3; session++ {
					p := newDiffPair(cfg, cores)
					for i := 0; i < 4000; i++ {
						p.step(t, rng, versioned)
					}
					for _, h := range p.fast {
						h.Release()
					}
					p.sh.Release()
				}
			}
		}
	}
}

// TestReferenceModeMatchesFast pins Config.Reference: a hierarchy built
// in reference mode must observe exactly what the fast path observes.
func TestReferenceModeMatchesFast(t *testing.T) {
	cfg := diffConfigs()[1]
	fsh := NewShared(cfg)
	fast := NewHierarchy(cfg, fsh)
	rcfg := cfg
	rcfg.Reference = true
	rsh := NewShared(rcfg)
	ref := NewHierarchy(rcfg, rsh)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		line := mem.Line(rng.Intn(192) + 1)
		if rng.Intn(3) == 0 {
			if got, want := fast.AccessVersioned(line), ref.AccessVersioned(line); got != want {
				t.Fatalf("AccessVersioned(%d) = %d fast, %d reference", line, got, want)
			}
		} else {
			if got, want := fast.Access(line), ref.Access(line); got != want {
				t.Fatalf("Access(%d) = %d fast, %d reference", line, got, want)
			}
		}
		if rng.Intn(10) == 0 {
			fast.Invalidate(line)
			ref.Invalidate(line)
		}
	}
	if fast.Stats != ref.Stats {
		t.Fatalf("stats diverge: fast %+v, reference %+v", fast.Stats, ref.Stats)
	}
}

// TestSetOfMatchesOracle pins the Lemire fastmod set indexing against the
// oracle's plain modulo, including lines past 2^32 (the div fallback).
func TestSetOfMatchesOracle(t *testing.T) {
	for _, sets := range []int{3, 5, 12, 24576, 1 << 13} {
		f := &level{sets: sets}
		s := &slowLevel{sets: sets}
		if sets&(sets-1) == 0 {
			f.setMask = uint64(sets - 1)
			s.setMask = uint64(sets - 1)
		} else {
			f.modMul = ^uint64(0)/uint64(sets) + 1
		}
		rng := rand.New(rand.NewSource(int64(sets)))
		for i := 0; i < 20000; i++ {
			n := mem.Line(rng.Uint64())
			switch rng.Intn(3) {
			case 0:
				n &= 0xFFFF
			case 1:
				n &= 0xFFFFFFFF
			}
			if got, want := f.setOf(n), s.setOf(n); got != want {
				t.Fatalf("sets=%d: setOf(%d) = %d, want %d", sets, n, got, want)
			}
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
